// Reproduces paper Fig. 9: cost-model verification. (a) measured vs modeled
// insert latency across partition ids (linear in trailing partitions);
// (b) measured vs modeled point-query latency across partitions of
// exponentially increasing size (linear in partition width). The paper
// reports measured/model ratios ~1.0 throughout.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "model/access_cost.h"
#include "model/cost_model.h"
#include "storage/column_chunk.h"
#include "util/stopwatch.h"

namespace casper::bench {
namespace {

// Least-squares fit of measured = a + b * predictor, reported as fitted
// constants — the paper fits RR/RW/SR the same way (§4.5).
struct Fit {
  double a, b;
};
Fit FitLine(const std::vector<double>& x, const std::vector<double>& y) {
  const size_t n = x.size();
  double sx = 0, sy = 0, sxx = 0, sxy = 0;
  for (size_t i = 0; i < n; ++i) {
    sx += x[i];
    sy += y[i];
    sxx += x[i] * x[i];
    sxy += x[i] * y[i];
  }
  const double b = (n * sxy - sx * sy) / (n * sxx - sx * sx);
  return {(sy - b * sx) / n, b};
}

void PartA_Inserts() {
  std::printf("\n-- (a) insert latency vs partition id (k = 100 partitions) --\n");
  const size_t rows = ScaledRows(4 << 20);
  const size_t k = 100;
  std::vector<Value> values;
  values.reserve(rows);
  Rng rng(3);
  for (size_t i = 0; i < rows; ++i) {
    values.push_back(static_cast<Value>(rng.Below(rows * 4)));
  }
  std::sort(values.begin(), values.end());
  std::vector<size_t> sizes(k, rows / k);
  sizes.back() += rows % k;
  PartitionedColumnChunk::Options copts;
  copts.dense = true;
  copts.spare_tail = 1 << 16;
  PartitionedColumnChunk chunk = PartitionedColumnChunk::Build(values, sizes, {}, copts);

  std::vector<double> trail, measured;
  std::printf("%12s %16s %16s %10s\n", "partition", "measured (ns)", "ripple steps",
              "");
  const int reps = 50;
  for (size_t m = 0; m < k; m += 10) {
    // A value routed to partition m.
    const auto& p = chunk.partition(std::min(m, chunk.num_partitions() - 1));
    const Value target = p.min_val;
    Stopwatch sw;
    for (int r = 0; r < reps; ++r) chunk.Insert(target);
    const double ns = sw.ElapsedNanos() / static_cast<double>(reps);
    trail.push_back(static_cast<double>(k - m));
    measured.push_back(ns);
    std::printf("%12zu %16.1f %16zu\n", m, ns, k - 1 - m);
  }
  const Fit f = FitLine(trail, measured);
  std::printf("fit: measured = %.1f + %.1f * trailing_partitions (model: "
              "(RR+RW)*(1+trail); fitted RR+RW = %.1f ns)\n",
              f.a, f.b, f.b);
  // Model-vs-measured ratio using the fitted constants, as the paper plots.
  double worst_ratio = 1.0;
  for (size_t i = 0; i < trail.size(); ++i) {
    const double model = f.a + f.b * trail[i];
    if (model > 1.0) {
      worst_ratio = std::max(worst_ratio,
                             std::max(measured[i] / model, model / measured[i]));
    }
  }
  std::printf("worst measured/model ratio with fitted constants: %.2f "
              "(paper: ~1.0)\n", worst_ratio);
}

void PartB_PointQueries() {
  std::printf("\n-- (b) point-query latency vs partition size (exponential "
              "partitions) --\n");
  // 15 partitions with sizes 2^6 .. 2^20 (paper: 2^9 .. 2^22 on a 10M chunk).
  std::vector<size_t> sizes;
  size_t total = 0;
  for (int e = 6; e <= 20; ++e) {
    sizes.push_back(size_t{1} << e);
    total += sizes.back();
  }
  std::vector<Value> values(total);
  for (size_t i = 0; i < total; ++i) values[i] = static_cast<Value>(i);
  PartitionedColumnChunk chunk = PartitionedColumnChunk::Build(values, sizes, {});

  std::vector<double> widths, measured;
  std::printf("%12s %14s %16s\n", "partition", "size (values)", "measured (ns)");
  size_t begin = 0;
  Rng rng(9);
  for (size_t t = 0; t < sizes.size(); ++t) {
    const int reps = 30;
    Stopwatch sw;
    uint64_t sink = 0;
    for (int r = 0; r < reps; ++r) {
      const Value v = static_cast<Value>(begin + rng.Below(sizes[t]));
      sink += chunk.CountEqual(v);
    }
    const double ns = sw.ElapsedNanos() / static_cast<double>(reps);
    widths.push_back(static_cast<double>(sizes[t]));
    measured.push_back(ns);
    std::printf("%12zu %14zu %16.1f   (sink %lu)\n", t, sizes[t], ns,
                static_cast<unsigned long>(sink % 10));
    begin += sizes[t];
  }
  const Fit f = FitLine(widths, measured);
  std::printf("fit: measured = %.1f + %.4f * partition_values "
              "(model: RR + SR*(width-1); fitted per-value scan = %.4f ns)\n",
              f.a, f.b, f.b);
  double worst_ratio = 1.0;
  for (size_t i = 0; i < widths.size(); ++i) {
    const double model = f.a + f.b * widths[i];
    if (model > 50.0 && measured[i] > 50.0) {
      worst_ratio = std::max(worst_ratio,
                             std::max(measured[i] / model, model / measured[i]));
    }
  }
  std::printf("worst measured/model ratio with fitted constants: %.2f "
              "(paper: ~1.0)\n", worst_ratio);
}

}  // namespace
}  // namespace casper::bench

int main() {
  casper::bench::PrintHeader("Figure 9", "cost model verification");
  casper::bench::PartA_Inserts();
  casper::bench::PartB_PointQueries();
  return 0;
}
