// Ablation for paper §6.2: dictionary and frame-of-reference compression
// ratios on micro-benchmark data and TPC-H-like data (paper: 2.5x micro,
// 4.5x TPC-H), plus the partitioning/compression synergy — finer partitions
// over hot ranges shrink per-frame value spans and therefore bit widths.
#include <algorithm>
#include <cstdio>

#include "bench_util.h"
#include "compression/dictionary.h"
#include "compression/frame_of_reference.h"
#include "workload/tpch.h"

namespace casper::bench {
namespace {

int Main() {
  PrintHeader("§6.2 ablation", "compression ratios & partitioning synergy");
  const size_t rows = ScaledRows(1 << 20);

  {
    std::printf("\n-- micro-benchmark data (HAP: uniform keys + small-domain "
                "payloads) --\n");
    Rng rng(5);
    auto ds = hap::MakeDataset(rows, 2, rng);
    std::sort(ds.keys.begin(), ds.keys.end());
    FrameOfReferenceColumn keys_for(ds.keys, size_t{2048});
    std::vector<Value> pay(ds.payload[0].begin(), ds.payload[0].end());
    DictionaryColumn pay_dict(pay);
    const double key_ratio = keys_for.CompressionRatio();
    // Payload columns are 4-byte in the HAP schema; ratio vs 32 bits.
    const double pay_ratio =
        32.0 / std::max(1u, pay_dict.bit_width());
    std::printf("  key column, FOR frames=2048:    %4.2fx (%.1f bits/value)\n",
                key_ratio, keys_for.MeanBitsPerValue());
    std::printf("  payload column, dictionary:     %4.2fx (%u bits/code, %zu "
                "distinct)\n",
                pay_ratio, pay_dict.bit_width(), pay_dict.dictionary_size());
    std::printf("  combined (1 key + 2 payloads):  %4.2fx   (paper: ~2.5x)\n",
                (8 + 4 + 4) /
                    (8 / key_ratio + 4 / pay_ratio + 4 / pay_ratio));
  }

  {
    std::printf("\n-- TPC-H-like lineitem --\n");
    Rng rng(6);
    auto t = tpch::MakeLineitem(rows, rng);
    std::sort(t.shipdate.begin(), t.shipdate.end());
    FrameOfReferenceColumn dates(t.shipdate, size_t{2048});
    std::vector<Value> qty(t.payload[0].begin(), t.payload[0].end());
    std::vector<Value> disc(t.payload[1].begin(), t.payload[1].end());
    std::vector<Value> price(t.payload[2].begin(), t.payload[2].end());
    DictionaryColumn qty_d(qty), disc_d(disc);
    FrameOfReferenceColumn price_f(price, size_t{2048});
    const double date_r = dates.CompressionRatio();
    const double qty_r = 32.0 / std::max(1u, qty_d.bit_width());
    const double disc_r = 32.0 / std::max(1u, disc_d.bit_width());
    const double price_r =
        32.0 / std::max(1.0, price_f.MeanBitsPerValue());
    std::printf("  shipdate FOR: %4.2fx  quantity dict: %4.2fx  discount dict: "
                "%4.2fx  price FOR: %4.2fx\n",
                date_r, qty_r, disc_r, price_r);
    const double combined = (8 + 4 + 4 + 4) / (8 / date_r + 4 / qty_r +
                                               4 / disc_r + 4 / price_r);
    std::printf("  combined row:                   %4.2fx   (paper: ~4.5x)\n",
                combined);
  }

  {
    std::printf("\n-- partitioning/compression synergy (sorted key column) --\n");
    Rng rng(7);
    std::vector<Value> keys;
    keys.reserve(rows);
    for (size_t i = 0; i < rows; ++i) {
      keys.push_back(static_cast<Value>(rng.Below(rows * 4)));
    }
    std::sort(keys.begin(), keys.end());
    std::printf("%16s %18s %14s\n", "#partitions", "bits/value (FOR)", "ratio");
    for (size_t parts : {1u, 16u, 64u, 256u, 1024u}) {
      FrameOfReferenceColumn col(keys, keys.size() / parts);
      std::printf("%16zu %18.2f %13.2fx\n", parts, col.MeanBitsPerValue(),
                  col.CompressionRatio());
    }
    std::printf("(finer partitions => smaller frame ranges => fewer bits; "
                "Casper's hot-range\n fine partitioning compounds with delta "
                "compression exactly this way)\n");
  }
  return 0;
}

}  // namespace
}  // namespace casper::bench

int main() { return casper::bench::Main(); }
