// Ablation for paper §6.2: dictionary and frame-of-reference compression
// ratios on micro-benchmark data and TPC-H-like data (paper: 2.5x micro,
// 4.5x TPC-H), plus the partitioning/compression synergy — finer partitions
// over hot ranges shrink per-frame value spans and therefore bit widths.
#include <algorithm>
#include <cstdio>
#include <cstdint>
#include <string>
#include <vector>

#include "bench_util.h"
#include "compression/dictionary.h"
#include "compression/frame_of_reference.h"
#include "compression/packed_column.h"
#include "exec/scan_kernels.h"
#include "util/stopwatch.h"
#include "workload/tpch.h"

namespace casper::bench {
namespace {

/// Best-of-`reps` wall time for `fn`, reported as Mrows/s over `rows`.
template <typename Fn>
double BestMrps(size_t rows, size_t reps, Fn&& fn) {
  double best_ns = 1e300;
  for (size_t r = 0; r < reps; ++r) {
    Stopwatch sw;
    fn();
    best_ns = std::min(best_ns, static_cast<double>(sw.ElapsedNanos()));
  }
  return static_cast<double>(rows) * 1e3 / best_ns;
}

int Main() {
  PrintHeader("§6.2 ablation", "compression ratios & partitioning synergy");
  const size_t rows = ScaledRows(1 << 20);
  JsonMetrics metrics;

  {
    std::printf("\n-- micro-benchmark data (HAP: uniform keys + small-domain "
                "payloads) --\n");
    Rng rng(5);
    auto ds = hap::MakeDataset(rows, 2, rng);
    std::sort(ds.keys.begin(), ds.keys.end());
    FrameOfReferenceColumn keys_for(ds.keys, size_t{2048});
    std::vector<Value> pay(ds.payload[0].begin(), ds.payload[0].end());
    DictionaryColumn pay_dict(pay);
    const double key_ratio = keys_for.CompressionRatio();
    // Payload columns are 4-byte in the HAP schema; ratio vs 32 bits.
    const double pay_ratio =
        32.0 / std::max(1u, pay_dict.bit_width());
    std::printf("  key column, FOR frames=2048:    %4.2fx (%.1f bits/value)\n",
                key_ratio, keys_for.MeanBitsPerValue());
    std::printf("  payload column, dictionary:     %4.2fx (%u bits/code, %zu "
                "distinct)\n",
                pay_ratio, pay_dict.bit_width(), pay_dict.dictionary_size());
    const double combined =
        (8 + 4 + 4) / (8 / key_ratio + 4 / pay_ratio + 4 / pay_ratio);
    std::printf("  combined (1 key + 2 payloads):  %4.2fx   (paper: ~2.5x)\n",
                combined);
    metrics.Add("micro_key_for_ratio", key_ratio);
    metrics.Add("micro_payload_dict_ratio", pay_ratio);
    metrics.Add("micro_combined_ratio", combined);

    // Encode / decode / scan throughput of the packed-column surface the
    // read paths actually use — same data, both codecs.
    std::printf("\n-- packed payload column throughput (Mrows/s, best-of) --\n");
    const size_t reps = SmokeMode() ? 5 : 11;
    for (const auto enc : {PayloadEncoding::kFrameOfReference,
                           PayloadEncoding::kDictionary}) {
      const char* name =
          enc == PayloadEncoding::kDictionary ? "dictionary" : "for";
      std::shared_ptr<const PackedPayloadColumn> col;
      const double encode_mrps = BestMrps(ds.payload[0].size(), reps, [&] {
        col = PackedPayloadColumn::Encode(ds.payload[0], enc);
      });
      std::vector<Payload> decoded;
      const double decode_mrps = BestMrps(ds.payload[0].size(), reps, [&] {
        decoded = col->DecodeAll();
      });
      if (decoded != ds.payload[0]) {
        std::fprintf(stderr, "%s round-trip mismatch!\n", name);
        return 1;
      }
      uint64_t sum = 0;
      const double scan_mrps = BestMrps(ds.payload[0].size(), reps, [&] {
        sum = col->SumRows(0, col->size());
      });
      uint64_t want = 0;
      for (const Payload v : ds.payload[0]) want += v;
      if (sum != want) {
        std::fprintf(stderr, "%s packed sum mismatch!\n", name);
        return 1;
      }
      std::printf("  %-10s encode %8.1f   decode %8.1f   sum-scan %10.1f   "
                  "(%.1f bits/value)\n",
                  name, encode_mrps, decode_mrps, scan_mrps,
                  col->MeanBitsPerValue());
      metrics.Add(std::string("packed_") + name + "_encode_mrps", encode_mrps);
      metrics.Add(std::string("packed_") + name + "_decode_mrps", decode_mrps);
      metrics.Add(std::string("packed_") + name + "_sum_scan_mrps", scan_mrps);
      metrics.Add(std::string("packed_") + name + "_mean_bits",
                  col->MeanBitsPerValue());
    }
  }

  {
    std::printf("\n-- TPC-H-like lineitem --\n");
    Rng rng(6);
    auto t = tpch::MakeLineitem(rows, rng);
    std::sort(t.shipdate.begin(), t.shipdate.end());
    FrameOfReferenceColumn dates(t.shipdate, size_t{2048});
    std::vector<Value> qty(t.payload[0].begin(), t.payload[0].end());
    std::vector<Value> disc(t.payload[1].begin(), t.payload[1].end());
    std::vector<Value> price(t.payload[2].begin(), t.payload[2].end());
    DictionaryColumn qty_d(qty), disc_d(disc);
    FrameOfReferenceColumn price_f(price, size_t{2048});
    const double date_r = dates.CompressionRatio();
    const double qty_r = 32.0 / std::max(1u, qty_d.bit_width());
    const double disc_r = 32.0 / std::max(1u, disc_d.bit_width());
    const double price_r =
        32.0 / std::max(1.0, price_f.MeanBitsPerValue());
    std::printf("  shipdate FOR: %4.2fx  quantity dict: %4.2fx  discount dict: "
                "%4.2fx  price FOR: %4.2fx\n",
                date_r, qty_r, disc_r, price_r);
    const double combined = (8 + 4 + 4 + 4) / (8 / date_r + 4 / qty_r +
                                               4 / disc_r + 4 / price_r);
    std::printf("  combined row:                   %4.2fx   (paper: ~4.5x)\n",
                combined);
    metrics.Add("tpch_shipdate_for_ratio", date_r);
    metrics.Add("tpch_quantity_dict_ratio", qty_r);
    metrics.Add("tpch_discount_dict_ratio", disc_r);
    metrics.Add("tpch_price_for_ratio", price_r);
    metrics.Add("tpch_combined_ratio", combined);
  }

  {
    std::printf("\n-- partitioning/compression synergy (sorted key column) --\n");
    Rng rng(7);
    std::vector<Value> keys;
    keys.reserve(rows);
    for (size_t i = 0; i < rows; ++i) {
      keys.push_back(static_cast<Value>(rng.Below(rows * 4)));
    }
    std::sort(keys.begin(), keys.end());
    std::printf("%16s %18s %14s\n", "#partitions", "bits/value (FOR)", "ratio");
    for (size_t parts : {1u, 16u, 64u, 256u, 1024u}) {
      FrameOfReferenceColumn col(keys, keys.size() / parts);
      std::printf("%16zu %18.2f %13.2fx\n", parts, col.MeanBitsPerValue(),
                  col.CompressionRatio());
      metrics.Add("synergy_bits_parts_" + std::to_string(parts),
                  col.MeanBitsPerValue());
    }
    std::printf("(finer partitions => smaller frame ranges => fewer bits; "
                "Casper's hot-range\n fine partitioning compounds with delta "
                "compression exactly this way)\n");
  }
  metrics.WriteIfRequested();
  return 0;
}

}  // namespace
}  // namespace casper::bench

int main() { return casper::bench::Main(); }
