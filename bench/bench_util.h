#ifndef CASPER_BENCH_BENCH_UTIL_H_
#define CASPER_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "engine/casper_engine.h"
#include "engine/harness.h"
#include "util/rng.h"
#include "workload/generator.h"
#include "workload/hap.h"

namespace casper::bench {

/// CASPER_SCALE multiplies dataset sizes (default 1.0). CASPER_OPS overrides
/// the per-experiment operation count (default: the paper's 10000, §7).
inline double ScaleFactor() {
  const char* s = std::getenv("CASPER_SCALE");
  return s != nullptr ? std::atof(s) : 1.0;
}

inline size_t ScaledRows(size_t base) {
  const double scaled = static_cast<double>(base) * ScaleFactor();
  return scaled < 1024 ? 1024 : static_cast<size_t>(scaled);
}

inline size_t NumOps(size_t base = 10000) {
  const char* s = std::getenv("CASPER_OPS");
  return s != nullptr ? static_cast<size_t>(std::atoll(s)) : base;
}

/// CASPER_SMOKE=1 shrinks sweeps to one tiny iteration — the CI bench-smoke
/// job uses it to verify the bench binaries run end-to-end (and to capture a
/// JSON trajectory artifact) without full-size runtimes.
inline bool SmokeMode() {
  const char* s = std::getenv("CASPER_SMOKE");
  return s != nullptr && *s != '\0' && *s != '0';
}

/// Flat metric sink written as JSON to $CASPER_BENCH_JSON (if set) — the
/// per-PR perf-trajectory artifact uploaded by the bench-smoke CI job.
class JsonMetrics {
 public:
  void Add(const std::string& key, double value) {
    metrics_.emplace_back(key, value);
  }

  /// Writes {"metric": value, ...} to the CASPER_BENCH_JSON path. No-op when
  /// the variable is unset.
  void WriteIfRequested() const {
    const char* path = std::getenv("CASPER_BENCH_JSON");
    if (path == nullptr || *path == '\0') return;
    std::FILE* f = std::fopen(path, "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot open %s for bench JSON\n", path);
      return;
    }
    std::fprintf(f, "{\n");
    for (size_t i = 0; i < metrics_.size(); ++i) {
      std::fprintf(f, "  \"%s\": %.6f%s\n", metrics_[i].first.c_str(),
                   metrics_[i].second, i + 1 < metrics_.size() ? "," : "");
    }
    std::fprintf(f, "}\n");
    std::fclose(f);
    std::printf("wrote %zu metrics to %s\n", metrics_.size(), path);
  }

 private:
  std::vector<std::pair<std::string, double>> metrics_;
};

inline void PrintHeader(const char* figure, const char* title) {
  std::printf("\n================================================================\n");
  std::printf("%s — %s\n", figure, title);
  std::printf("(reproduction; absolute numbers are machine-specific, the paper\n");
  std::printf(" comparison lives in EXPERIMENTS.md)\n");
  std::printf("================================================================\n");
}

inline void PrintRow(const std::string& label, double value, const char* unit) {
  std::printf("  %-28s %12.2f %s\n", label.c_str(), value, unit);
}

/// The six layouts of Fig. 12 in paper order.
inline std::vector<LayoutMode> AllLayouts() {
  return {LayoutMode::kCasper,       LayoutMode::kEquiWidthGhost,
          LayoutMode::kEquiWidth,    LayoutMode::kDeltaStore,
          LayoutMode::kSorted,       LayoutMode::kNoOrder};
}

struct BuiltWorkload {
  hap::Dataset data;
  WorkloadSpec spec;
  std::vector<Operation> training;
  std::vector<Operation> ops;
};

/// Standard experiment input: dataset + training sample + replay stream,
/// all deterministic for a given workload and size.
inline BuiltWorkload MakeHapExperiment(hap::Workload w, size_t rows, size_t num_ops,
                                       size_t payload_cols = 2,
                                       uint64_t seed = 1234) {
  BuiltWorkload out;
  Rng data_rng(seed);
  out.data = hap::MakeDataset(rows, payload_cols, data_rng);
  out.spec = hap::MakeSpec(w, out.data.domain_lo, out.data.domain_hi);
  Rng train_rng(seed + 1);
  Rng run_rng(seed + 2);
  out.training = GenerateWorkload(out.spec, num_ops, train_rng);
  out.ops = GenerateWorkload(out.spec, num_ops, run_rng);
  return out;
}

/// Builds an engine and replays the op stream; returns the harness result.
/// Goes through the unified EngineOptions surface so every bench exercises
/// the same construction path production callers use.
inline HarnessResult RunLayout(LayoutMode mode, const BuiltWorkload& w,
                               LayoutBuildOptions opts = LayoutBuildOptions()) {
  EngineOptions eopts;
  eopts.keys = w.data.keys;
  eopts.payload = w.data.payload;
  eopts.training = &w.training;
  eopts.layout = std::move(opts);
  eopts.layout.mode = mode;
  CasperEngine engine = CasperEngine::Open(std::move(eopts));
  return RunWorkload(engine.layout(), w.ops);
}

}  // namespace casper::bench

#endif  // CASPER_BENCH_BENCH_UTIL_H_
