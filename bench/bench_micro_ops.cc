// Google-benchmark micro-benchmarks for the storage-engine primitives the
// cost model prices: partition scans (SR), ripple steps (RR+RW), partition
// index probes, and the chunk's five operations. These are the numbers
// CalibrateEngineCosts feeds the optimizer (paper §4.5).
#include <algorithm>
#include <vector>

#include <benchmark/benchmark.h>

#include "storage/column_chunk.h"
#include "storage/partition_index.h"
#include "util/rng.h"

namespace casper {
namespace {

PartitionedColumnChunk MakeChunk(size_t rows, size_t parts, size_t ghosts_each,
                                 bool dense) {
  Rng rng(1);
  std::vector<Value> values;
  values.reserve(rows);
  for (size_t i = 0; i < rows; ++i) {
    values.push_back(static_cast<Value>(rng.Below(rows * 4)));
  }
  std::sort(values.begin(), values.end());
  std::vector<size_t> sizes(parts, rows / parts);
  sizes.back() += rows % parts;
  PartitionedColumnChunk::Options opts;
  opts.dense = dense;
  opts.spare_tail = dense ? (1 << 16) : 0;
  return PartitionedColumnChunk::Build(values, sizes,
                                       std::vector<size_t>(parts, ghosts_each),
                                       opts);
}

void BM_PointQuery(benchmark::State& state) {
  const size_t parts = static_cast<size_t>(state.range(0));
  auto chunk = MakeChunk(1 << 20, parts, 0, false);
  Rng rng(2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        chunk.CountEqual(static_cast<Value>(rng.Below(4 << 20))));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PointQuery)->Arg(16)->Arg(64)->Arg(256)->Arg(1024);

void BM_RangeCount(benchmark::State& state) {
  const size_t parts = static_cast<size_t>(state.range(0));
  auto chunk = MakeChunk(1 << 20, parts, 0, false);
  Rng rng(3);
  const Value width = (4 << 20) / 100;  // ~1% selectivity
  for (auto _ : state) {
    const Value lo = static_cast<Value>(rng.Below(4 << 20));
    benchmark::DoNotOptimize(chunk.CountRange(lo, lo + width));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RangeCount)->Arg(64)->Arg(256);

void BM_InsertWithGhosts(benchmark::State& state) {
  const size_t ghosts = static_cast<size_t>(state.range(0));
  auto chunk = MakeChunk(1 << 20, 256, ghosts, ghosts == 0);
  Rng rng(4);
  for (auto _ : state) {
    chunk.Insert(static_cast<Value>(rng.Below(4 << 20)));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_InsertWithGhosts)->Arg(0)->Arg(64)->Arg(1024);

void BM_DeleteAndReinsert(benchmark::State& state) {
  auto chunk = MakeChunk(1 << 20, 256, 16, false);
  Rng rng(5);
  for (auto _ : state) {
    const Value v = static_cast<Value>(rng.Below(4 << 20));
    if (chunk.DeleteOne(v) > 0) chunk.Insert(v);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DeleteAndReinsert);

void BM_RippleUpdate(benchmark::State& state) {
  auto chunk = MakeChunk(1 << 20, 256, 16, false);
  Rng rng(6);
  for (auto _ : state) {
    const Value from = static_cast<Value>(rng.Below(4 << 20));
    const Value to = static_cast<Value>(rng.Below(4 << 20));
    benchmark::DoNotOptimize(chunk.Update(from, to));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RippleUpdate);

void BM_PartitionIndexRoute(benchmark::State& state) {
  const size_t parts = static_cast<size_t>(state.range(0));
  std::vector<Value> uppers;
  for (size_t i = 1; i <= parts; ++i) {
    uppers.push_back(static_cast<Value>(i * 1000));
  }
  PartitionIndex index(uppers, 9);
  Rng rng(7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        index.Route(static_cast<Value>(rng.Below(parts * 1000 + 500))));
  }
}
BENCHMARK(BM_PartitionIndexRoute)->Arg(64)->Arg(256)->Arg(4096);

void BM_PartitionIndexBinarySearch(benchmark::State& state) {
  const size_t parts = static_cast<size_t>(state.range(0));
  std::vector<Value> uppers;
  for (size_t i = 1; i <= parts; ++i) {
    uppers.push_back(static_cast<Value>(i * 1000));
  }
  PartitionIndex index(uppers, 9);
  Rng rng(7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(index.RouteBinarySearch(
        static_cast<Value>(rng.Below(parts * 1000 + 500))));
  }
}
BENCHMARK(BM_PartitionIndexBinarySearch)->Arg(64)->Arg(256)->Arg(4096);

}  // namespace
}  // namespace casper

BENCHMARK_MAIN();
