// Google-benchmark micro-benchmarks for the storage-engine primitives the
// cost model prices: partition scans (SR), ripple steps (RR+RW), partition
// index probes, and the chunk's five operations. These are the numbers
// CalibrateEngineCosts feeds the optimizer (paper §4.5).
//
// This binary also carries the KERNEL-THROUGHPUT AXIS: a hand-timed
// comparison of the seed element-at-a-time scan loops against the
// vectorized scan kernels (exec/scan_kernels.h) and the scan-on-compressed
// path, written as $CASPER_BENCH_JSON metrics so the CI bench-smoke job
// accumulates per-PR kernel numbers (see RunKernelAxis below and the
// Kernel* google-benchmarks).
#include <algorithm>
#include <cstdio>
#include <vector>

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "compression/frame_of_reference.h"
#include "compression/packed_column.h"
#include "exec/scan_kernels.h"
#include "exec/scan_spec.h"
#include "layouts/no_order.h"
#include "storage/column_chunk.h"
#include "storage/partition_index.h"
#include "util/rng.h"
#include "util/stopwatch.h"

namespace casper {
namespace {

// --- Kernel-throughput axis --------------------------------------------------
// Seed-style loops, replicated verbatim (branch structure included) and
// noinline so the comparison is against what the tree actually shipped
// before the kernel layer, not against whatever the optimizer makes of an
// inlined lambda.

__attribute__((noinline)) uint64_t SeedCountRange(const Value* d, size_t n,
                                                  Value lo, Value hi) {
  uint64_t count = 0;
  for (size_t i = 0; i < n; ++i) count += (d[i] >= lo && d[i] < hi);
  return count;
}

__attribute__((noinline)) int64_t SeedSumPayloadRange(const Value* keys,
                                                      const Payload* pay,
                                                      size_t n, Value lo,
                                                      Value hi) {
  int64_t sum = 0;
  for (size_t i = 0; i < n; ++i) {
    if (keys[i] >= lo && keys[i] < hi) sum += pay[i];
  }
  return sum;
}

struct KernelFixture {
  std::vector<Value> keys;
  std::vector<Payload> pay;
  Value lo, hi;  // ~50% selectivity: worst case for the branchy seed loop
};

KernelFixture MakeKernelFixture(size_t n) {
  KernelFixture f;
  Rng rng(71);
  f.keys.reserve(n);
  f.pay.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    f.keys.push_back(static_cast<Value>(rng.Below(1u << 20)));
    f.pay.push_back(static_cast<Payload>(rng.Below(10000)));
  }
  f.lo = 1 << 18;
  f.hi = 3 << 18;
  return f;
}

/// Million rows/second for fn() over `rows`-row passes, best of `reps`.
template <typename Fn>
double MeasureMrps(size_t rows, size_t reps, const Fn& fn) {
  double best_ns = 1e300;
  for (size_t r = 0; r < reps; ++r) {
    Stopwatch sw;
    benchmark::DoNotOptimize(fn());
    const double ns = static_cast<double>(sw.ElapsedNanos());
    if (ns < best_ns) best_ns = ns;
  }
  return static_cast<double>(rows) * 1e3 / best_ns;  // rows/ns * 1e3 = Mrows/s
}

/// The kernel axis proper: seed loops vs dispatched kernels vs compressed,
/// printed and (when CASPER_BENCH_JSON is set) written as flat metrics.
void RunKernelAxis(bench::JsonMetrics* metrics) {
  const size_t rows = bench::SmokeMode() ? (1u << 15) : (1u << 18);
  const size_t reps = bench::SmokeMode() ? 5 : 25;
  const KernelFixture f = MakeKernelFixture(rows);
  const FrameOfReferenceColumn compressed(f.keys, 4096);

  const double count_seed = MeasureMrps(rows, reps, [&] {
    return SeedCountRange(f.keys.data(), rows, f.lo, f.hi);
  });
  const double count_simd = MeasureMrps(rows, reps, [&] {
    return kernels::CountInRange(f.keys.data(), rows, f.lo, f.hi);
  });
  const double count_compressed = MeasureMrps(rows, reps, [&] {
    return compressed.CountRange(f.lo, f.hi);
  });
  const double sum_seed = MeasureMrps(rows, reps, [&] {
    return SeedSumPayloadRange(f.keys.data(), f.pay.data(), rows, f.lo, f.hi);
  });
  const double sum_simd = MeasureMrps(rows, reps, [&] {
    return kernels::SumPayloadInRange(f.keys.data(), f.pay.data(), rows, f.lo,
                                      f.hi);
  });
  std::vector<uint32_t> slots(rows);
  const double filter_simd = MeasureMrps(rows, reps, [&] {
    return kernels::FilterSlots(f.keys.data(), rows, f.lo, f.hi, 0,
                                slots.data());
  });
  // The ScanSpec payload-predicate kernel: refine a ~50%-selective slot list
  // by a closed payload range (the Q6 discount/quantity shape), measured in
  // input slots per second against its scalar reference.
  const size_t nslots =
      kernels::FilterSlots(f.keys.data(), rows, f.lo, f.hi, 0, slots.data());
  std::vector<uint32_t> refined(nslots);
  const double filter_pay_scalar = MeasureMrps(nslots, reps, [&] {
    return kernels::scalar::FilterPayloadInRange(f.pay.data(), slots.data(),
                                                 nslots, 2500, 7500,
                                                 refined.data());
  });
  const double filter_pay_simd = MeasureMrps(nslots, reps, [&] {
    return kernels::FilterPayloadInRange(f.pay.data(), slots.data(), nslots,
                                         2500, 7500, refined.data());
  });

  // Sanity: all three representations agree before we publish numbers.
  const uint64_t want = SeedCountRange(f.keys.data(), rows, f.lo, f.hi);
  if (kernels::CountInRange(f.keys.data(), rows, f.lo, f.hi) != want ||
      compressed.CountRange(f.lo, f.hi) != want) {
    std::fprintf(stderr, "kernel axis: representations disagree!\n");
    std::abort();
  }

  bench::PrintHeader("kernel axis", "scan-kernel throughput (Mrows/s)");
  std::printf("  avx2: %s, rows/pass: %zu\n",
              kernels::HaveAvx2() ? "yes" : "no (scalar dispatch)", rows);
  bench::PrintRow("count_range seed loop", count_seed, "Mrows/s");
  bench::PrintRow("count_range kernel", count_simd, "Mrows/s");
  bench::PrintRow("count_range compressed", count_compressed, "Mrows/s");
  bench::PrintRow("sum_payload seed loop", sum_seed, "Mrows/s");
  bench::PrintRow("sum_payload kernel", sum_simd, "Mrows/s");
  bench::PrintRow("filter_slots kernel", filter_simd, "Mrows/s");
  bench::PrintRow("filter_payload scalar", filter_pay_scalar, "Mslots/s");
  bench::PrintRow("filter_payload kernel", filter_pay_simd, "Mslots/s");
  bench::PrintRow("count speedup", count_simd / count_seed, "x");
  bench::PrintRow("sum_payload speedup", sum_simd / sum_seed, "x");

  metrics->Add("kernel_avx2_active", kernels::HaveAvx2() ? 1.0 : 0.0);
  metrics->Add("kernel_count_range_seed_mrps", count_seed);
  metrics->Add("kernel_count_range_simd_mrps", count_simd);
  metrics->Add("kernel_count_range_compressed_mrps", count_compressed);
  metrics->Add("kernel_count_range_speedup", count_simd / count_seed);
  metrics->Add("kernel_sum_payload_seed_mrps", sum_seed);
  metrics->Add("kernel_sum_payload_simd_mrps", sum_simd);
  metrics->Add("kernel_sum_payload_speedup", sum_simd / sum_seed);
  metrics->Add("kernel_filter_slots_mrps", filter_simd);
  metrics->Add("kernel_filter_payload_scalar_mslots", filter_pay_scalar);
  metrics->Add("kernel_filter_payload_simd_mslots", filter_pay_simd);
}

// --- Spec-dispatch-overhead axis ---------------------------------------------
// The ScanSpec redesign routes every legacy read (CountRange & co.) through
// a descriptor build + the ExecuteScan virtual. This axis pins the facade's
// cost: engine.CountRange (spec path end to end, latch included) against the
// raw kernel call that the pre-redesign virtual body reduced to on this
// layout. Keys are drawn from the full 63-bit domain so the compressed-chunk
// cache's >=2x-compression gate rejects the column and BOTH paths scan the
// raw array — apples to apples. The facade must cost <= 2%.

double RunSpecDispatchAxis(bench::JsonMetrics* metrics) {
  // Chunk-sized scan (the unit real queries amortize over): long enough that
  // the per-call facade cost (spec build + virtual dispatch + latch) is
  // measured against a realistic scan body, short enough for smoke CI.
  const size_t rows = 1u << 18;
  const size_t reps = 51;
  Rng rng(97);
  std::vector<Value> keys;
  keys.reserve(rows);
  for (size_t i = 0; i < rows; ++i) {
    keys.push_back(static_cast<Value>(rng.Below(~uint64_t{0} >> 1)));
  }
  const Value lo = static_cast<Value>(uint64_t{1} << 61);
  const Value hi = static_cast<Value>(uint64_t{3} << 61);  // ~50% selectivity
  const NoOrderLayout layout(std::move(keys), {});
  // Both paths scan the SAME allocation (the layout's column) — heap/THP
  // placement of two separate 2MB buffers would otherwise dwarf the facade
  // cost being measured.
  const Value* column = layout.raw_keys().data();

  // Interleave the two measurements (direct rep, spec rep, ...) so both
  // best-of windows sample the same machine conditions — back-to-back
  // windows would let a turbo/thermal drift masquerade as facade cost.
  double direct_best_ns = 1e300;
  double spec_best_ns = 1e300;
  for (size_t r = 0; r < reps; ++r) {
    Stopwatch sw;
    benchmark::DoNotOptimize(kernels::CountInRange(column, rows, lo, hi));
    direct_best_ns = std::min(direct_best_ns, static_cast<double>(sw.ElapsedNanos()));
    sw.Restart();
    benchmark::DoNotOptimize(layout.CountRange(lo, hi));
    spec_best_ns = std::min(spec_best_ns, static_cast<double>(sw.ElapsedNanos()));
  }
  const double direct_mrps = static_cast<double>(rows) * 1e3 / direct_best_ns;
  const double spec_mrps = static_cast<double>(rows) * 1e3 / spec_best_ns;

  // Sanity before publishing: the facade answers exactly the direct kernel.
  if (layout.CountRange(lo, hi) != kernels::CountInRange(column, rows, lo, hi)) {
    std::fprintf(stderr, "spec axis: facade disagrees with direct kernel!\n");
    std::abort();
  }

  const double overhead_pct = (1.0 - spec_mrps / direct_mrps) * 100.0;
  bench::PrintHeader("spec dispatch axis",
                     "ScanSpec facade vs direct kernel (CountRange)");
  bench::PrintRow("count_range direct kernel", direct_mrps, "Mrows/s");
  bench::PrintRow("count_range via ScanSpec", spec_mrps, "Mrows/s");
  bench::PrintRow("facade overhead", overhead_pct, "%");

  metrics->Add("spec_dispatch_direct_mrps", direct_mrps);
  metrics->Add("spec_dispatch_spec_mrps", spec_mrps);
  metrics->Add("spec_dispatch_overhead_pct", overhead_pct);
  // The <= 2% budget is enforced by the caller AFTER the JSON is written, so
  // a failing run still uploads the numbers that explain the failure.
  return overhead_pct;
}

// --- Packed-payload axis -----------------------------------------------------
// Scan-on-compressed for payload columns: predicate-free sums and closed-
// range filters evaluated on a dictionary-encoded PackedPayloadColumn vs the
// flat-array kernels, on dictionary-friendly data (~1000 distinct values —
// the HAP small-domain payload shape). The sum comparison is the CI-gated
// one: the packed representation must be >= 1.5x the flat kernel, which the
// encode-time prefix-sum blocks guarantee with a wide margin.

double RunPackedPayloadAxis(bench::JsonMetrics* metrics) {
  const size_t rows = 1u << 18;
  const size_t reps = 51;
  Rng rng(131);
  std::vector<Payload> pay;
  pay.reserve(rows);
  for (size_t i = 0; i < rows; ++i) {
    pay.push_back(static_cast<Payload>(rng.Below(1000)) * 9 + 100);
  }
  const auto packed =
      PackedPayloadColumn::Encode(pay, PayloadEncoding::kDictionary);

  // Interleave the two measurements (flat rep, packed rep, ...) so both
  // best-of windows sample the same machine conditions, like the spec axis.
  double flat_best_ns = 1e300;
  double packed_best_ns = 1e300;
  for (size_t r = 0; r < reps; ++r) {
    Stopwatch sw;
    benchmark::DoNotOptimize(kernels::SumPayload(pay.data(), rows));
    flat_best_ns = std::min(flat_best_ns, static_cast<double>(sw.ElapsedNanos()));
    sw.Restart();
    benchmark::DoNotOptimize(packed->SumRows(0, rows));
    packed_best_ns =
        std::min(packed_best_ns, static_cast<double>(sw.ElapsedNanos()));
  }
  const double flat_mrps = static_cast<double>(rows) * 1e3 / flat_best_ns;
  const double packed_mrps = static_cast<double>(rows) * 1e3 / packed_best_ns;
  const double sum_speedup = packed_mrps / flat_mrps;

  // Closed-range predicate: packed filter (value range rewritten to a code
  // range once, then scanned on the packed words) vs the gather kernel over
  // an identity slot list — the two paths EvalSpecRows picks between.
  const Payload plo_val = 1000;
  const Payload phi_val = 5000;
  uint64_t plo = 0, phi = 0;
  if (!packed->RewritePredicate(plo_val, phi_val, &plo, &phi)) {
    std::fprintf(stderr, "packed axis: predicate rewrite unexpectedly empty\n");
    std::abort();
  }
  std::vector<uint32_t> slots(rows), out_flat(rows), out_packed(rows);
  for (size_t i = 0; i < rows; ++i) slots[i] = static_cast<uint32_t>(i);
  double fflat_best_ns = 1e300;
  double fpacked_best_ns = 1e300;
  for (size_t r = 0; r < reps; ++r) {
    Stopwatch sw;
    benchmark::DoNotOptimize(kernels::FilterPayloadInRange(
        pay.data(), slots.data(), rows, plo_val, phi_val, out_flat.data()));
    fflat_best_ns =
        std::min(fflat_best_ns, static_cast<double>(sw.ElapsedNanos()));
    sw.Restart();
    benchmark::DoNotOptimize(kernels::FilterPackedPayloadInRange(
        packed->words(), 0, rows, packed->bit_width(), plo, phi, 0,
        out_packed.data()));
    fpacked_best_ns =
        std::min(fpacked_best_ns, static_cast<double>(sw.ElapsedNanos()));
  }
  const double filter_flat_mrps = static_cast<double>(rows) * 1e3 / fflat_best_ns;
  const double filter_packed_mrps =
      static_cast<double>(rows) * 1e3 / fpacked_best_ns;

  // Sanity before publishing: both representations agree bit for bit.
  const uint64_t want_sum =
      static_cast<uint64_t>(kernels::SumPayload(pay.data(), rows));
  const size_t want_n = kernels::FilterPayloadInRange(
      pay.data(), slots.data(), rows, plo_val, phi_val, out_flat.data());
  const size_t got_n = kernels::FilterPackedPayloadInRange(
      packed->words(), 0, rows, packed->bit_width(), plo, phi, 0,
      out_packed.data());
  if (packed->SumRows(0, rows) != want_sum || got_n != want_n ||
      !std::equal(out_flat.begin(), out_flat.begin() + static_cast<ptrdiff_t>(want_n),
                  out_packed.begin())) {
    std::fprintf(stderr, "packed axis: representations disagree!\n");
    std::abort();
  }

  bench::PrintHeader("packed payload axis",
                     "packed (dictionary) vs flat payload kernels");
  std::printf("  encoding: dictionary, %zu distinct, %u bits/code, %.1f "
              "bits/value\n",
              packed->dictionary_size(), packed->bit_width(),
              packed->MeanBitsPerValue());
  bench::PrintRow("sum_payload flat kernel", flat_mrps, "Mrows/s");
  bench::PrintRow("sum_payload packed", packed_mrps, "Mrows/s");
  bench::PrintRow("sum_payload packed speedup", sum_speedup, "x");
  bench::PrintRow("filter_payload flat kernel", filter_flat_mrps, "Mrows/s");
  bench::PrintRow("filter_payload packed", filter_packed_mrps, "Mrows/s");

  metrics->Add("packed_payload_mean_bits", packed->MeanBitsPerValue());
  metrics->Add("packed_sum_payload_flat_mrps", flat_mrps);
  metrics->Add("packed_sum_payload_packed_mrps", packed_mrps);
  metrics->Add("packed_sum_payload_speedup", sum_speedup);
  metrics->Add("packed_filter_payload_flat_mrps", filter_flat_mrps);
  metrics->Add("packed_filter_payload_packed_mrps", filter_packed_mrps);
  metrics->Add("packed_filter_payload_speedup",
               filter_packed_mrps / filter_flat_mrps);
  // The >= 1.5x floor is enforced by the caller AFTER the JSON is written,
  // so a failing run still uploads the numbers that explain the failure.
  return sum_speedup;
}

// Google-benchmark registrations of the same kernels, for --benchmark_filter
// deep dives at arbitrary sizes.
void BM_KernelCountRangeSeed(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const KernelFixture f = MakeKernelFixture(n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(SeedCountRange(f.keys.data(), n, f.lo, f.hi));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(n));
}
BENCHMARK(BM_KernelCountRangeSeed)->Arg(1 << 12)->Arg(1 << 18);

void BM_KernelCountRangeSimd(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const KernelFixture f = MakeKernelFixture(n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(kernels::CountInRange(f.keys.data(), n, f.lo, f.hi));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(n));
}
BENCHMARK(BM_KernelCountRangeSimd)->Arg(1 << 12)->Arg(1 << 18);

void BM_KernelSumPayloadSeed(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const KernelFixture f = MakeKernelFixture(n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        SeedSumPayloadRange(f.keys.data(), f.pay.data(), n, f.lo, f.hi));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(n));
}
BENCHMARK(BM_KernelSumPayloadSeed)->Arg(1 << 12)->Arg(1 << 18);

void BM_KernelSumPayloadSimd(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const KernelFixture f = MakeKernelFixture(n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        kernels::SumPayloadInRange(f.keys.data(), f.pay.data(), n, f.lo, f.hi));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(n));
}
BENCHMARK(BM_KernelSumPayloadSimd)->Arg(1 << 12)->Arg(1 << 18);

PartitionedColumnChunk MakeChunk(size_t rows, size_t parts, size_t ghosts_each,
                                 bool dense) {
  Rng rng(1);
  std::vector<Value> values;
  values.reserve(rows);
  for (size_t i = 0; i < rows; ++i) {
    values.push_back(static_cast<Value>(rng.Below(rows * 4)));
  }
  std::sort(values.begin(), values.end());
  std::vector<size_t> sizes(parts, rows / parts);
  sizes.back() += rows % parts;
  PartitionedColumnChunk::Options opts;
  opts.dense = dense;
  opts.spare_tail = dense ? (1 << 16) : 0;
  return PartitionedColumnChunk::Build(values, sizes,
                                       std::vector<size_t>(parts, ghosts_each),
                                       opts);
}

void BM_PointQuery(benchmark::State& state) {
  const size_t parts = static_cast<size_t>(state.range(0));
  auto chunk = MakeChunk(1 << 20, parts, 0, false);
  Rng rng(2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        chunk.CountEqual(static_cast<Value>(rng.Below(4 << 20))));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PointQuery)->Arg(16)->Arg(64)->Arg(256)->Arg(1024);

void BM_RangeCount(benchmark::State& state) {
  const size_t parts = static_cast<size_t>(state.range(0));
  auto chunk = MakeChunk(1 << 20, parts, 0, false);
  Rng rng(3);
  const Value width = (4 << 20) / 100;  // ~1% selectivity
  for (auto _ : state) {
    const Value lo = static_cast<Value>(rng.Below(4 << 20));
    benchmark::DoNotOptimize(chunk.CountRange(lo, lo + width));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RangeCount)->Arg(64)->Arg(256);

void BM_InsertWithGhosts(benchmark::State& state) {
  const size_t ghosts = static_cast<size_t>(state.range(0));
  auto chunk = MakeChunk(1 << 20, 256, ghosts, ghosts == 0);
  Rng rng(4);
  for (auto _ : state) {
    chunk.Insert(static_cast<Value>(rng.Below(4 << 20)));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_InsertWithGhosts)->Arg(0)->Arg(64)->Arg(1024);

void BM_DeleteAndReinsert(benchmark::State& state) {
  auto chunk = MakeChunk(1 << 20, 256, 16, false);
  Rng rng(5);
  for (auto _ : state) {
    const Value v = static_cast<Value>(rng.Below(4 << 20));
    if (chunk.DeleteOne(v) > 0) chunk.Insert(v);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DeleteAndReinsert);

void BM_RippleUpdate(benchmark::State& state) {
  auto chunk = MakeChunk(1 << 20, 256, 16, false);
  Rng rng(6);
  for (auto _ : state) {
    const Value from = static_cast<Value>(rng.Below(4 << 20));
    const Value to = static_cast<Value>(rng.Below(4 << 20));
    benchmark::DoNotOptimize(chunk.Update(from, to));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RippleUpdate);

void BM_PartitionIndexRoute(benchmark::State& state) {
  const size_t parts = static_cast<size_t>(state.range(0));
  std::vector<Value> uppers;
  for (size_t i = 1; i <= parts; ++i) {
    uppers.push_back(static_cast<Value>(i * 1000));
  }
  PartitionIndex index(uppers, 9);
  Rng rng(7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        index.Route(static_cast<Value>(rng.Below(parts * 1000 + 500))));
  }
}
BENCHMARK(BM_PartitionIndexRoute)->Arg(64)->Arg(256)->Arg(4096);

void BM_PartitionIndexBinarySearch(benchmark::State& state) {
  const size_t parts = static_cast<size_t>(state.range(0));
  std::vector<Value> uppers;
  for (size_t i = 1; i <= parts; ++i) {
    uppers.push_back(static_cast<Value>(i * 1000));
  }
  PartitionIndex index(uppers, 9);
  Rng rng(7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(index.RouteBinarySearch(
        static_cast<Value>(rng.Below(parts * 1000 + 500))));
  }
}
BENCHMARK(BM_PartitionIndexBinarySearch)->Arg(64)->Arg(256)->Arg(4096);

}  // namespace
}  // namespace casper

// Custom main: the kernel axis runs first (prints + JSON for the CI perf
// trajectory), then any google-benchmarks selected on the command line.
int main(int argc, char** argv) {
  // One metrics object for both hand-timed axes: WriteIfRequested truncates
  // the JSON file, so it must run exactly once.
  casper::bench::JsonMetrics metrics;
  casper::RunKernelAxis(&metrics);
  const double spec_overhead_pct = casper::RunSpecDispatchAxis(&metrics);
  const double packed_sum_speedup = casper::RunPackedPayloadAxis(&metrics);
  metrics.WriteIfRequested();
  if (spec_overhead_pct > 2.0) {
    std::fprintf(stderr,
                 "spec axis: facade overhead %.2f%% exceeds the 2%% budget\n",
                 spec_overhead_pct);
    return 1;
  }
  if (packed_sum_speedup < 1.5) {
    std::fprintf(stderr,
                 "packed axis: packed sum speedup %.2fx below the 1.5x floor\n",
                 packed_sum_speedup);
    return 1;
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
