// Google-benchmark micro-benchmarks for the storage-engine primitives the
// cost model prices: partition scans (SR), ripple steps (RR+RW), partition
// index probes, and the chunk's five operations. These are the numbers
// CalibrateEngineCosts feeds the optimizer (paper §4.5).
//
// This binary also carries the KERNEL-THROUGHPUT AXIS: a hand-timed
// comparison of the seed element-at-a-time scan loops against the
// vectorized scan kernels (exec/scan_kernels.h) and the scan-on-compressed
// path, written as $CASPER_BENCH_JSON metrics so the CI bench-smoke job
// accumulates per-PR kernel numbers (see RunKernelAxis below and the
// Kernel* google-benchmarks).
#include <algorithm>
#include <cstdio>
#include <vector>

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "compression/frame_of_reference.h"
#include "exec/scan_kernels.h"
#include "storage/column_chunk.h"
#include "storage/partition_index.h"
#include "util/rng.h"
#include "util/stopwatch.h"

namespace casper {
namespace {

// --- Kernel-throughput axis --------------------------------------------------
// Seed-style loops, replicated verbatim (branch structure included) and
// noinline so the comparison is against what the tree actually shipped
// before the kernel layer, not against whatever the optimizer makes of an
// inlined lambda.

__attribute__((noinline)) uint64_t SeedCountRange(const Value* d, size_t n,
                                                  Value lo, Value hi) {
  uint64_t count = 0;
  for (size_t i = 0; i < n; ++i) count += (d[i] >= lo && d[i] < hi);
  return count;
}

__attribute__((noinline)) int64_t SeedSumPayloadRange(const Value* keys,
                                                      const Payload* pay,
                                                      size_t n, Value lo,
                                                      Value hi) {
  int64_t sum = 0;
  for (size_t i = 0; i < n; ++i) {
    if (keys[i] >= lo && keys[i] < hi) sum += pay[i];
  }
  return sum;
}

struct KernelFixture {
  std::vector<Value> keys;
  std::vector<Payload> pay;
  Value lo, hi;  // ~50% selectivity: worst case for the branchy seed loop
};

KernelFixture MakeKernelFixture(size_t n) {
  KernelFixture f;
  Rng rng(71);
  f.keys.reserve(n);
  f.pay.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    f.keys.push_back(static_cast<Value>(rng.Below(1u << 20)));
    f.pay.push_back(static_cast<Payload>(rng.Below(10000)));
  }
  f.lo = 1 << 18;
  f.hi = 3 << 18;
  return f;
}

/// Million rows/second for fn() over `rows`-row passes, best of `reps`.
template <typename Fn>
double MeasureMrps(size_t rows, size_t reps, const Fn& fn) {
  double best_ns = 1e300;
  for (size_t r = 0; r < reps; ++r) {
    Stopwatch sw;
    benchmark::DoNotOptimize(fn());
    const double ns = static_cast<double>(sw.ElapsedNanos());
    if (ns < best_ns) best_ns = ns;
  }
  return static_cast<double>(rows) * 1e3 / best_ns;  // rows/ns * 1e3 = Mrows/s
}

/// The kernel axis proper: seed loops vs dispatched kernels vs compressed,
/// printed and (when CASPER_BENCH_JSON is set) written as flat metrics.
void RunKernelAxis() {
  const size_t rows = bench::SmokeMode() ? (1u << 15) : (1u << 18);
  const size_t reps = bench::SmokeMode() ? 5 : 25;
  const KernelFixture f = MakeKernelFixture(rows);
  const FrameOfReferenceColumn compressed(f.keys, 4096);

  const double count_seed = MeasureMrps(rows, reps, [&] {
    return SeedCountRange(f.keys.data(), rows, f.lo, f.hi);
  });
  const double count_simd = MeasureMrps(rows, reps, [&] {
    return kernels::CountInRange(f.keys.data(), rows, f.lo, f.hi);
  });
  const double count_compressed = MeasureMrps(rows, reps, [&] {
    return compressed.CountRange(f.lo, f.hi);
  });
  const double sum_seed = MeasureMrps(rows, reps, [&] {
    return SeedSumPayloadRange(f.keys.data(), f.pay.data(), rows, f.lo, f.hi);
  });
  const double sum_simd = MeasureMrps(rows, reps, [&] {
    return kernels::SumPayloadInRange(f.keys.data(), f.pay.data(), rows, f.lo,
                                      f.hi);
  });
  std::vector<uint32_t> slots(rows);
  const double filter_simd = MeasureMrps(rows, reps, [&] {
    return kernels::FilterSlots(f.keys.data(), rows, f.lo, f.hi, 0,
                                slots.data());
  });

  // Sanity: all three representations agree before we publish numbers.
  const uint64_t want = SeedCountRange(f.keys.data(), rows, f.lo, f.hi);
  if (kernels::CountInRange(f.keys.data(), rows, f.lo, f.hi) != want ||
      compressed.CountRange(f.lo, f.hi) != want) {
    std::fprintf(stderr, "kernel axis: representations disagree!\n");
    std::abort();
  }

  bench::PrintHeader("kernel axis", "scan-kernel throughput (Mrows/s)");
  std::printf("  avx2: %s, rows/pass: %zu\n",
              kernels::HaveAvx2() ? "yes" : "no (scalar dispatch)", rows);
  bench::PrintRow("count_range seed loop", count_seed, "Mrows/s");
  bench::PrintRow("count_range kernel", count_simd, "Mrows/s");
  bench::PrintRow("count_range compressed", count_compressed, "Mrows/s");
  bench::PrintRow("sum_payload seed loop", sum_seed, "Mrows/s");
  bench::PrintRow("sum_payload kernel", sum_simd, "Mrows/s");
  bench::PrintRow("filter_slots kernel", filter_simd, "Mrows/s");
  bench::PrintRow("count speedup", count_simd / count_seed, "x");
  bench::PrintRow("sum_payload speedup", sum_simd / sum_seed, "x");

  bench::JsonMetrics metrics;
  metrics.Add("kernel_avx2_active", kernels::HaveAvx2() ? 1.0 : 0.0);
  metrics.Add("kernel_count_range_seed_mrps", count_seed);
  metrics.Add("kernel_count_range_simd_mrps", count_simd);
  metrics.Add("kernel_count_range_compressed_mrps", count_compressed);
  metrics.Add("kernel_count_range_speedup", count_simd / count_seed);
  metrics.Add("kernel_sum_payload_seed_mrps", sum_seed);
  metrics.Add("kernel_sum_payload_simd_mrps", sum_simd);
  metrics.Add("kernel_sum_payload_speedup", sum_simd / sum_seed);
  metrics.Add("kernel_filter_slots_mrps", filter_simd);
  metrics.WriteIfRequested();
}

// Google-benchmark registrations of the same kernels, for --benchmark_filter
// deep dives at arbitrary sizes.
void BM_KernelCountRangeSeed(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const KernelFixture f = MakeKernelFixture(n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(SeedCountRange(f.keys.data(), n, f.lo, f.hi));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(n));
}
BENCHMARK(BM_KernelCountRangeSeed)->Arg(1 << 12)->Arg(1 << 18);

void BM_KernelCountRangeSimd(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const KernelFixture f = MakeKernelFixture(n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(kernels::CountInRange(f.keys.data(), n, f.lo, f.hi));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(n));
}
BENCHMARK(BM_KernelCountRangeSimd)->Arg(1 << 12)->Arg(1 << 18);

void BM_KernelSumPayloadSeed(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const KernelFixture f = MakeKernelFixture(n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        SeedSumPayloadRange(f.keys.data(), f.pay.data(), n, f.lo, f.hi));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(n));
}
BENCHMARK(BM_KernelSumPayloadSeed)->Arg(1 << 12)->Arg(1 << 18);

void BM_KernelSumPayloadSimd(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const KernelFixture f = MakeKernelFixture(n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        kernels::SumPayloadInRange(f.keys.data(), f.pay.data(), n, f.lo, f.hi));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(n));
}
BENCHMARK(BM_KernelSumPayloadSimd)->Arg(1 << 12)->Arg(1 << 18);

PartitionedColumnChunk MakeChunk(size_t rows, size_t parts, size_t ghosts_each,
                                 bool dense) {
  Rng rng(1);
  std::vector<Value> values;
  values.reserve(rows);
  for (size_t i = 0; i < rows; ++i) {
    values.push_back(static_cast<Value>(rng.Below(rows * 4)));
  }
  std::sort(values.begin(), values.end());
  std::vector<size_t> sizes(parts, rows / parts);
  sizes.back() += rows % parts;
  PartitionedColumnChunk::Options opts;
  opts.dense = dense;
  opts.spare_tail = dense ? (1 << 16) : 0;
  return PartitionedColumnChunk::Build(values, sizes,
                                       std::vector<size_t>(parts, ghosts_each),
                                       opts);
}

void BM_PointQuery(benchmark::State& state) {
  const size_t parts = static_cast<size_t>(state.range(0));
  auto chunk = MakeChunk(1 << 20, parts, 0, false);
  Rng rng(2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        chunk.CountEqual(static_cast<Value>(rng.Below(4 << 20))));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PointQuery)->Arg(16)->Arg(64)->Arg(256)->Arg(1024);

void BM_RangeCount(benchmark::State& state) {
  const size_t parts = static_cast<size_t>(state.range(0));
  auto chunk = MakeChunk(1 << 20, parts, 0, false);
  Rng rng(3);
  const Value width = (4 << 20) / 100;  // ~1% selectivity
  for (auto _ : state) {
    const Value lo = static_cast<Value>(rng.Below(4 << 20));
    benchmark::DoNotOptimize(chunk.CountRange(lo, lo + width));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RangeCount)->Arg(64)->Arg(256);

void BM_InsertWithGhosts(benchmark::State& state) {
  const size_t ghosts = static_cast<size_t>(state.range(0));
  auto chunk = MakeChunk(1 << 20, 256, ghosts, ghosts == 0);
  Rng rng(4);
  for (auto _ : state) {
    chunk.Insert(static_cast<Value>(rng.Below(4 << 20)));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_InsertWithGhosts)->Arg(0)->Arg(64)->Arg(1024);

void BM_DeleteAndReinsert(benchmark::State& state) {
  auto chunk = MakeChunk(1 << 20, 256, 16, false);
  Rng rng(5);
  for (auto _ : state) {
    const Value v = static_cast<Value>(rng.Below(4 << 20));
    if (chunk.DeleteOne(v) > 0) chunk.Insert(v);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DeleteAndReinsert);

void BM_RippleUpdate(benchmark::State& state) {
  auto chunk = MakeChunk(1 << 20, 256, 16, false);
  Rng rng(6);
  for (auto _ : state) {
    const Value from = static_cast<Value>(rng.Below(4 << 20));
    const Value to = static_cast<Value>(rng.Below(4 << 20));
    benchmark::DoNotOptimize(chunk.Update(from, to));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RippleUpdate);

void BM_PartitionIndexRoute(benchmark::State& state) {
  const size_t parts = static_cast<size_t>(state.range(0));
  std::vector<Value> uppers;
  for (size_t i = 1; i <= parts; ++i) {
    uppers.push_back(static_cast<Value>(i * 1000));
  }
  PartitionIndex index(uppers, 9);
  Rng rng(7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        index.Route(static_cast<Value>(rng.Below(parts * 1000 + 500))));
  }
}
BENCHMARK(BM_PartitionIndexRoute)->Arg(64)->Arg(256)->Arg(4096);

void BM_PartitionIndexBinarySearch(benchmark::State& state) {
  const size_t parts = static_cast<size_t>(state.range(0));
  std::vector<Value> uppers;
  for (size_t i = 1; i <= parts; ++i) {
    uppers.push_back(static_cast<Value>(i * 1000));
  }
  PartitionIndex index(uppers, 9);
  Rng rng(7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(index.RouteBinarySearch(
        static_cast<Value>(rng.Below(parts * 1000 + 500))));
  }
}
BENCHMARK(BM_PartitionIndexBinarySearch)->Arg(64)->Arg(256)->Arg(4096);

}  // namespace
}  // namespace casper

// Custom main: the kernel axis runs first (prints + JSON for the CI perf
// trajectory), then any google-benchmarks selected on the command line.
int main(int argc, char** argv) {
  casper::RunKernelAxis();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
