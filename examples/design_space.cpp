// Walks the column-layout design space of paper Table 1 — data organization
// x update policy x buffering — instantiating each point on identical data
// and showing how the fundamental operations behave. This is the "map" of
// which the paper's six operation modes are concrete points.
#include <cstdio>
#include <string>

#include "engine/casper_engine.h"
#include "engine/harness.h"
#include "util/rng.h"
#include "workload/generator.h"
#include "workload/hap.h"

using namespace casper;

namespace {

struct DesignPoint {
  LayoutMode mode;
  const char* organization;
  const char* update_policy;
  const char* buffering;
};

}  // namespace

int main() {
  // Table 1: (a) insertion order / (b) sorted / (c) partitioned
  //        x (a) in-place / (b) out-of-place / (c) hybrid
  //        x (a) none / (b) global / (c) per-partition.
  const DesignPoint points[] = {
      {LayoutMode::kNoOrder, "insertion order", "in-place", "none"},
      {LayoutMode::kSorted, "sorted", "in-place (shift)", "none"},
      {LayoutMode::kDeltaStore, "sorted", "out-of-place", "global (delta)"},
      {LayoutMode::kEquiWidth, "partitioned (equi)", "hybrid (ripple)", "none"},
      {LayoutMode::kEquiWidthGhost, "partitioned (equi)", "hybrid", "per-partition"},
      {LayoutMode::kCasper, "partitioned (tuned)", "hybrid", "per-partition (Eq.18)"},
  };

  const size_t rows = 1 << 19;
  Rng rng(17);
  hap::Dataset data = hap::MakeDataset(rows, 1, rng);
  WorkloadSpec spec = hap::MakeSpec(hap::Workload::kHybridSkewed, data.domain_lo,
                                    data.domain_hi);
  Rng train_rng(18), run_rng(19);
  auto training = GenerateWorkload(spec, 6000, train_rng);
  auto ops = GenerateWorkload(spec, 6000, run_rng);

  std::printf("%zu rows; hybrid skewed workload (Q1 49%% / Q4 50%% / Q6 1%%)\n\n",
              rows);
  std::printf("%-14s %-20s %-18s %-22s %10s %10s\n", "mode", "organization",
              "update policy", "buffering", "Q1 (us)", "Q4 (us)");
  for (const DesignPoint& p : points) {
    EngineOptions opts;
    opts.keys = data.keys;
    opts.payload = data.payload;
    opts.training = &training;
    opts.layout.mode = p.mode;
    CasperEngine engine = CasperEngine::Open(std::move(opts));
    HarnessResult r = RunWorkload(engine.layout(), ops);
    std::printf("%-14s %-20s %-18s %-22s %10.2f %10.3f\n",
                std::string(engine.layout().name()).c_str(), p.organization,
                p.update_policy, p.buffering,
                r.Rec(OpKind::kPointQuery).MeanMicros(),
                r.Rec(OpKind::kInsert).MeanMicros());
  }
  std::printf("\nNo fixed point of the design space wins everywhere; Casper\n"
              "chooses the point (and the partition geometry within it) from\n"
              "the workload — that is the paper's thesis.\n");
  return 0;
}
