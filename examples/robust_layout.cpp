// Robustness to workload drift (paper §7.5): what happens when the workload
// you tuned for is not quite the workload you get? We train a layout on a
// forecast, then replay drifted variants (rotated hot ranges, read/write
// mass shifts) and watch the degradation curve — flat near the forecast,
// a cliff far from it.
#include <cstdio>

#include "engine/casper_engine.h"
#include "engine/harness.h"
#include "util/rng.h"
#include "workload/generator.h"
#include "workload/hap.h"
#include "workload/perturb.h"

using namespace casper;

int main() {
  const size_t rows = 1 << 19;
  Rng rng(31);
  hap::Dataset data = hap::MakeDataset(rows, 0, rng);

  WorkloadSpec forecast;
  forecast.domain_lo = data.domain_lo;
  forecast.domain_hi = data.domain_hi;
  forecast.mix = {.point_query = 0.5, .insert = 0.5};
  forecast.read_target = std::make_shared<HotspotDistribution>(0.6, 0.35, 0.95);
  forecast.write_target = std::make_shared<HotspotDistribution>(0.05, 0.35, 0.95);

  Rng train_rng(32);
  auto training = GenerateWorkload(forecast, 8000, train_rng);

  auto evaluate = [&](const WorkloadSpec& actual) {
    Rng run_rng(33);
    auto ops = GenerateWorkload(actual, 8000, run_rng);
    EngineOptions opts;
    opts.keys = data.keys;
    opts.payload = data.payload;
    opts.training = &training;
    opts.layout.mode = LayoutMode::kCasper;
    CasperEngine engine = CasperEngine::Open(std::move(opts));
    HarnessOptions hopts;
    hopts.record_latency = false;
    HarnessResult r = RunWorkload(engine.layout(), ops, hopts);
    return r.seconds * 1e6 / static_cast<double>(r.ops);
  };

  const double base_us = evaluate(forecast);
  std::printf("trained-on-forecast latency: %.2f us/op\n\n", base_us);

  std::printf("rotational drift of the hot ranges:\n");
  for (const double rot : {0.0, 0.05, 0.10, 0.20, 0.35, 0.50}) {
    const double us = evaluate(ApplyRotationalShift(forecast, rot));
    std::printf("  rotate %4.0f%%: %7.2f us/op  (%.2fx)\n", rot * 100, us,
                us / base_us);
  }

  std::printf("\nread/write mass drift:\n");
  for (const double mass : {-0.25, -0.10, 0.0, 0.10, 0.25}) {
    const double us = evaluate(ApplyMassShift(forecast, mass));
    std::printf("  shift %+4.0f%%: %7.2f us/op  (%.2fx)\n", mass * 100, us,
                us / base_us);
  }

  std::printf("\nIf your drift regularly exceeds the flat region, enable the\n"
              "online maintenance service (EngineOptions::maintenance — the\n"
              "paper §1 'Positioning' online re-analysis loop) or train on a\n"
              "widened workload sample.\n");
  return 0;
}
