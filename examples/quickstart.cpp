// Quickstart: load a table, describe the expected workload, let Casper pick
// the optimal column layout, and run queries + updates through the
// storage-engine API (paper §6.4).
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <cstdio>
#include <vector>

#include "engine/casper_engine.h"
#include "util/rng.h"
#include "workload/generator.h"
#include "workload/hap.h"

using namespace casper;

int main() {
  // 1. Some data: 200k rows with an 8-byte key and two 4-byte payloads.
  Rng rng(42);
  hap::Dataset data = hap::MakeDataset(/*rows=*/200000, /*payload_cols=*/2, rng);
  std::printf("loaded %zu rows, key domain [%lld, %lld)\n", data.keys.size(),
              static_cast<long long>(data.domain_lo),
              static_cast<long long>(data.domain_hi));

  // 2. A representative workload sample: 49% point queries on recent keys,
  //    50% inserts, 1% key corrections — a typical HTAP ingest+dashboard mix.
  WorkloadSpec spec = hap::MakeSpec(hap::Workload::kHybridSkewed, data.domain_lo,
                                    data.domain_hi);
  std::vector<Operation> sample = GenerateWorkload(spec, 5000, rng);

  // 3. Open the engine in Casper mode: it captures the Frequency Model from
  //    the sample, solves the layout problem per chunk, and materializes the
  //    tailored layout (partition sizes + ghost-value placement). Everything
  //    Open needs rides in one EngineOptions value — data, layout config,
  //    parallelism, and (optionally) the adaptive maintenance policy.
  EngineOptions options;
  options.keys = data.keys;
  options.payload = data.payload;
  options.training = &sample;
  options.layout.mode = LayoutMode::kCasper;
  // Keep adapting online: the engine observes live traffic and re-partitions
  // chunks whose trained layout has drifted from what actually runs.
  options.maintenance.enabled = true;
  CasperEngine engine = CasperEngine::Open(std::move(options));
  std::printf("engine open: %zu rows under the %s layout\n", engine.num_rows(),
              std::string(engine.layout().name()).c_str());

  // 4. Use the storage-engine API.
  const Value probe = data.keys[1234];
  std::vector<Payload> row;
  const size_t hits = engine.Find(probe, &row);
  std::printf("Find(%lld): %zu match(es)", static_cast<long long>(probe), hits);
  if (!row.empty()) std::printf(", payload = {%u, %u}", row[0], row[1]);
  std::printf("\n");

  const Value lo = data.domain_lo + (data.domain_hi - data.domain_lo) / 2;
  const Value hi = lo + (data.domain_hi - data.domain_lo) / 100;
  std::printf("CountBetween[%lld, %lld) = %llu rows\n", static_cast<long long>(lo),
              static_cast<long long>(hi),
              static_cast<unsigned long long>(engine.CountBetween(lo, hi)));
  std::printf("SumPayloadBetween(col 0) = %lld\n",
              static_cast<long long>(engine.SumPayloadBetween(lo, hi, {0})));

  engine.Insert(probe + 1, {11, 22});
  std::printf("inserted key %lld\n", static_cast<long long>(probe + 1));
  engine.Update(probe + 1, probe + 2);
  std::printf("updated %lld -> %lld\n", static_cast<long long>(probe + 1),
              static_cast<long long>(probe + 2));
  std::printf("deleted %zu row(s) with key %lld\n", engine.Delete(probe + 2),
              static_cast<long long>(probe + 2));

  const auto mem = engine.MemoryStats();
  std::printf("memory amplification: %.3fx (%zu bytes total)\n",
              mem.Amplification(), mem.total_bytes);

  // 5. One maintenance cycle on demand (background mode runs these on a
  //    timer): the service replays what it observed above against the cost
  //    model and re-partitions any chunk whose layout has diverged.
  const MaintenanceCycleReport cycle = engine.maintenance()->RunCycle();
  std::printf("maintenance cycle: %zu ops captured, %zu chunks evaluated, "
              "%zu re-partitioned\n",
              cycle.ops_captured, cycle.chunks_evaluated,
              cycle.chunks_repartitioned);
  return 0;
}
