// Service-level agreements as layout constraints (paper §5, Eq. 21): an
// operations team demands that no insert ever ripples longer than a budget,
// and that point queries never scan more than a bounded partition. Casper
// folds both bounds into the optimization problem instead of post-hoc
// throttling.
#include <cstdio>
#include <string>

#include "engine/casper_engine.h"
#include "engine/harness.h"
#include "layouts/partitioned.h"
#include "model/access_cost.h"
#include "util/rng.h"
#include "workload/generator.h"
#include "workload/hap.h"

using namespace casper;

int main() {
  const size_t rows = 1 << 20;
  Rng rng(5);
  hap::Dataset data = hap::MakeDataset(rows, 0, rng);
  WorkloadSpec spec = hap::MakeSpec(hap::Workload::kSlaHybrid, data.domain_lo,
                                    data.domain_hi);
  Rng train_rng(6), run_rng(7);
  auto training = GenerateWorkload(spec, 10000, train_rng);
  auto live = GenerateWorkload(spec, 10000, run_rng);

  const AccessCostConstants costs = CalibrateEngineCosts(2048);
  std::printf("calibrated: ripple step = %.0f ns, block scan = %.0f ns\n\n",
              costs.rr + costs.rw, costs.sr);

  struct Config {
    const char* name;
    double update_sla_ns;
    double read_sla_ns;
  };
  const Config configs[] = {
      {"unconstrained", 0.0, 0.0},
      {"update SLA: 33 ripples", (costs.rr + costs.rw) * 33.0, 0.0},
      {"update SLA: 9 ripples", (costs.rr + costs.rw) * 9.0, 0.0},
      {"read SLA: 4-block scans", 0.0, costs.rr + costs.sr * 4.0},
  };

  std::printf("%-26s %10s %12s %12s %14s %12s\n", "configuration", "parts",
              "max width", "Q1 (us)", "Q4 p99.9 (us)", "Kops/s");
  for (const Config& cfg : configs) {
    EngineOptions opts;
    opts.keys = data.keys;
    opts.payload = data.payload;
    opts.training = &training;
    opts.layout.mode = LayoutMode::kCasper;
    opts.layout.planner.update_sla_ns = cfg.update_sla_ns;
    opts.layout.planner.read_sla_ns = cfg.read_sla_ns;
    CasperEngine engine = CasperEngine::Open(std::move(opts));
    auto* pl = dynamic_cast<PartitionedLayout*>(&engine.layout());
    size_t parts = 0, max_width = 0;
    for (size_t ci = 0; ci < pl->table().num_chunks(); ++ci) {
      const auto& chunk = pl->table().key_chunk(ci);
      parts += chunk.num_partitions();
      for (size_t t = 0; t < chunk.num_partitions(); ++t) {
        max_width = std::max(max_width, chunk.partition(t).cap);
      }
    }
    HarnessResult r = RunWorkload(engine.layout(), live);
    std::printf("%-26s %10zu %12zu %12.2f %14.2f %12.1f\n", cfg.name, parts,
                max_width, r.Rec(OpKind::kPointQuery).MeanMicros(),
                r.Rec(OpKind::kInsert).PercentileMicros(0.999),
                r.ThroughputOpsPerSec() / 1000.0);
  }
  std::printf("\nTighter update SLAs cap the partition count (cheaper, bounded\n"
              "ripples) at the price of coarser reads; read SLAs cap the\n"
              "partition width (bounded scans) nearly for free on this workload.\n"
              "Pick the bound that matches the operation you must guarantee —\n"
              "that is paper Fig. 15's knob.\n");
  return 0;
}
