// Scenario from the paper's introduction: an analytics dashboard over a
// continuously ingested table — analytical range scans over the whole
// history plus point lookups and a firehose of inserts on recent data.
// We tune Casper offline from yesterday's workload (the "index advisor"
// positioning of §1) and compare against the delta-store design a modern
// column store would use.
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <string>

#include "engine/casper_engine.h"
#include "engine/harness.h"
#include "util/rng.h"
#include "workload/generator.h"
#include "workload/hap.h"

using namespace casper;

int main() {
  const size_t rows = 1 << 20;
  Rng rng(11);
  hap::Dataset data = hap::MakeDataset(rows, 2, rng);

  // The dashboard workload: 30% point lookups on recent orders, 15% range
  // aggregates (1% selectivity), 54% inserts, 1% key corrections.
  WorkloadSpec spec;
  spec.domain_lo = data.domain_lo;
  spec.domain_hi = data.domain_hi;
  spec.mix = {.point_query = 0.30, .range_sum = 0.15, .insert = 0.54,
              .update = 0.01};
  spec.read_target = std::make_shared<HotspotDistribution>(0.8, 0.2, 0.9);
  spec.write_target = std::make_shared<HotspotDistribution>(0.7, 0.3, 0.9);
  spec.range_selectivity = 0.01;

  // Yesterday's trace trains the layout; today's trace is what actually runs.
  Rng yesterday(100), today(200);
  auto training = GenerateWorkload(spec, 10000, yesterday);
  auto live = GenerateWorkload(spec, 10000, today);

  std::printf("dashboard table: %zu rows, workload: 45%% reads / 55%% writes\n\n",
              rows);
  std::printf("%-16s %12s %12s %12s %12s %12s\n", "layout", "Q1 (us)", "Q3 (us)",
              "Q4 (us)", "Kops/s", "mem amp");
  for (const LayoutMode mode :
       {LayoutMode::kCasper, LayoutMode::kDeltaStore, LayoutMode::kSorted}) {
    EngineOptions opts;
    opts.keys = data.keys;
    opts.payload = data.payload;
    opts.training = &training;
    opts.layout.mode = mode;
    CasperEngine engine = CasperEngine::Open(std::move(opts));
    HarnessResult r = RunWorkload(engine.layout(), live);
    const auto mem = engine.MemoryStats();
    std::printf("%-16s %12.2f %12.2f %12.3f %12.1f %11.3fx\n",
                std::string(engine.layout().name()).c_str(),
                r.Rec(OpKind::kPointQuery).MeanMicros(),
                r.Rec(OpKind::kRangeSum).MeanMicros(),
                r.Rec(OpKind::kInsert).MeanMicros(),
                r.ThroughputOpsPerSec() / 1000.0, mem.Amplification());
    // Scan-on-compressed telemetry: how often the range aggregates above ran
    // on packed payload columns, and how many partitions the payload zone
    // maps skipped outright. StatsSnapshots() is the unified stats surface —
    // layouts without per-chunk accounting just return an empty registry.
    const ChunkStatsSnapshot totals = engine.layout().StatsSnapshots().Totals();
    if (totals.compressed_payload_scans + totals.payload_partitions_pruned > 0) {
      std::printf("%-16s %zu packed payload partition scans, %zu partitions "
                  "zone-map pruned\n",
                  "", static_cast<size_t>(totals.compressed_payload_scans),
                  static_cast<size_t>(totals.payload_partitions_pruned));
    }
  }
  // The overnight analytics window: ingest pauses and the same dashboard
  // queries run read-only. With stable chunk epochs the compressed cache
  // warms up, so the range aggregates move onto packed payload columns and
  // the payload zone maps start skipping partitions.
  {
    WorkloadSpec analytics = spec;
    analytics.mix = {.range_sum = 1.0};
    Rng tonight(300);
    auto overnight = GenerateWorkload(analytics, 3000, tonight);
    EngineOptions opts;
    opts.keys = data.keys;
    opts.payload = data.payload;
    opts.training = &training;
    opts.layout.mode = LayoutMode::kCasper;
    CasperEngine engine = CasperEngine::Open(std::move(opts));
    // First pass pays the per-chunk encode builds; second pass runs on the
    // warm cache and shows the steady-state packed-scan cost.
    HarnessResult cold = RunWorkload(engine.layout(), overnight);
    HarnessResult warm = RunWorkload(engine.layout(), overnight);
    const ChunkStatsSnapshot totals = engine.layout().StatsSnapshots().Totals();
    std::printf("\novernight analytics (read-only range sums on Casper): "
                "%.2f us/query warming the encodings, %.2f us/query warm\n"
                "  %zu packed payload partition scans, %zu partitions "
                "zone-map pruned\n",
                cold.Rec(OpKind::kRangeSum).MeanMicros(),
                warm.Rec(OpKind::kRangeSum).MeanMicros(),
                static_cast<size_t>(totals.compressed_payload_scans),
                static_cast<size_t>(totals.payload_partitions_pruned));
  }
  // The history tail goes cold: cap resident memory at ~a quarter of the
  // table and let the tier manager push cold chunks to disk. The dashboard
  // keeps querying the full history — evicted chunks answer straight off
  // their chunk files — and the tiering counters show the disk traffic.
  {
    const std::string dir =
        "/tmp/casper_dashboard_store_" + std::to_string(::getpid());
    std::system(("rm -rf " + dir).c_str());
    EngineOptions opts;
    opts.keys = data.keys;
    opts.payload = data.payload;
    opts.layout.mode = LayoutMode::kEquiWidthGhost;
    // Eight chunks: tiering granularity — the budget holds the two hottest.
    opts.layout.chunk_values = rows / 8;
    opts.persist.storage_dir = dir;
    const int64_t table_bytes = static_cast<int64_t>(
        rows * (sizeof(Value) + data.payload.size() * sizeof(Payload)));
    // A third of the raw table: room for the two hot chunks plus their ghost
    // slots (an exact quarter would evict a hot chunk over a few spare KiB).
    const int64_t budget = table_bytes / 3;
    opts.persist.memory_budget_bytes = budget;
    opts.persist.max_evictions_per_cycle = 64;
    CasperEngine engine = CasperEngine::Open(std::move(opts));

    // Today's dashboard traffic hits recent keys; the tier cycle decides who
    // stays resident. (Production would let maintenance drive the cycles.)
    const Value recent_lo =
        data.domain_hi - (data.domain_hi - data.domain_lo) / 5;
    for (int cycle = 0; cycle < 4; ++cycle) {
      for (int i = 0; i < 200; ++i) {
        (void)engine.CountBetween(recent_lo + i, data.domain_hi - i);
      }
      engine.tier()->RunCycle();
    }
    int64_t history_sum = engine.SumPayloadBetween(
        data.domain_lo, data.domain_hi, {0});  // full-history scan, partly cold
    const ChunkStatsSnapshot t = engine.layout().StatsSnapshots().Totals();
    std::printf("\ntiered dashboard (budget %.0f%% of table): sum(history)=%lld\n"
                "  %zu evictions, %zu promotions, %zu disk reads, "
                "%.2f MiB read back\n",
                100.0 * static_cast<double>(budget) /
                    static_cast<double>(table_bytes),
                static_cast<long long>(history_sum),
                static_cast<size_t>(t.evictions),
                static_cast<size_t>(t.promotions),
                static_cast<size_t>(t.disk_reads),
                static_cast<double>(t.disk_bytes_read) / (1024.0 * 1024.0));
    std::system(("rm -rf " + dir).c_str());
  }
  std::printf("\nCasper trades ~1%% extra memory (ghost values) for write costs\n"
              "close to an append-only store while keeping reads partitioned.\n");
  return 0;
}
