#!/usr/bin/env python3
"""Kernel-parity linter for the vectorized scan layer.

The scan-kernel contract (src/exec/scan_kernels.h) is three-sided: every
kernel exists as a scalar reference, an AVX2 implementation, and a
runtime-dispatched entry point, and the equivalence suite pins all of them
to identical results. A kernel added to one side but not the others
compiles fine and silently runs the slow (or worse, untested) path — which
is exactly the kind of drift a grep-shaped linter catches and a human
reviewer eventually misses.

Checked, for every function declared in `namespace scalar` of the header:
  1. `namespace avx2` declares the same name (and nothing extra);
  2. a top-level dispatched declaration exists in the header;
  3. scan_kernels.cc defines the scalar implementation and the dispatched
     entry point;
  4. scan_kernels_avx2.cc defines the AVX2 implementation;
  5. tests/scan_kernels_test.cc sweeps the name (the equivalence suite).

Kernels outside the scalar namespace (the packed/scan-on-compressed family:
CountPackedInRange, SumPacked, ...) are single-implementation by design —
they work on bit-packed words where the unpack IS the kernel — and are only
checked for test coverage (rule 5).

Rule 6 covers the tiered-storage consumers: everything under src/persist/
(the cold-scan path runs the same packed kernels over chunk files) must call
kernels through the top-level dispatched entry points — a direct scalar:: or
avx2:: call there would silently pin cold scans to one implementation and
skip the runtime dispatch the parity contract exists to protect.
"""

import re
import sys
from pathlib import Path

HEADER = "src/exec/scan_kernels.h"
SCALAR_TU = "src/exec/scan_kernels.cc"
AVX2_TU = "src/exec/scan_kernels_avx2.cc"
TEST = "tests/scan_kernels_test.cc"

# Declared at the top level on purpose, with no scalar/avx2 variants.
NON_KERNEL_NAMES = {"HaveAvx2", "ForEachQualifyingSlot"}

FUNC_RE = re.compile(r"\b([A-Z]\w+)\s*\(")


def extract_namespace_block(text: str, name: str) -> str:
    """The brace-matched body of `namespace <name> { ... }`, or ''."""
    m = re.search(r"namespace\s+" + re.escape(name) + r"\s*\{", text)
    if not m:
        return ""
    depth = 0
    for i in range(m.end() - 1, len(text)):
        if text[i] == "{":
            depth += 1
        elif text[i] == "}":
            depth -= 1
            if depth == 0:
                return text[m.end(): i]
    return text[m.end():]


def strip_comments(text: str) -> str:
    text = re.sub(r"/\*.*?\*/", "", text, flags=re.S)
    return re.sub(r"//[^\n]*", "", text)


def func_names(block: str) -> set:
    return {n for n in FUNC_RE.findall(strip_comments(block))
            if n not in NON_KERNEL_NAMES}


def main() -> int:
    root = Path(sys.argv[1]) if len(sys.argv) > 1 else Path(__file__).resolve().parents[2]
    errors = []

    header = (root / HEADER).read_text()
    scalar_decls = func_names(extract_namespace_block(header, "scalar"))
    avx2_decls = func_names(extract_namespace_block(header, "avx2"))
    if not scalar_decls:
        errors.append(f"{HEADER}: found no declarations in namespace scalar")

    # 1. scalar and avx2 namespaces declare the same kernel set.
    for name in sorted(scalar_decls - avx2_decls):
        errors.append(f"{HEADER}: {name} declared in namespace scalar but not avx2")
    for name in sorted(avx2_decls - scalar_decls):
        errors.append(f"{HEADER}: {name} declared in namespace avx2 but not scalar")

    # 2. dispatched declaration at the top level of the header.
    top_level = header
    for ns in ("scalar", "avx2"):
        block = extract_namespace_block(header, ns)
        if block:
            top_level = top_level.replace(block, "")
    top_level_names = func_names(top_level)
    for name in sorted(scalar_decls - top_level_names):
        errors.append(f"{HEADER}: {name} has no top-level dispatched declaration")

    # 3. scalar definition + dispatched definition in scan_kernels.cc.
    scalar_tu = (root / SCALAR_TU).read_text()
    scalar_defs = func_names(extract_namespace_block(scalar_tu, "scalar"))
    dispatch_defs = func_names(scalar_tu.replace(
        extract_namespace_block(scalar_tu, "scalar"), ""))
    for name in sorted(scalar_decls - scalar_defs):
        errors.append(f"{SCALAR_TU}: {name} has no scalar definition")
    for name in sorted(scalar_decls - dispatch_defs):
        errors.append(f"{SCALAR_TU}: {name} has no dispatched definition")

    # 4. AVX2 definition in its own -mavx2 TU.
    avx2_tu = (root / AVX2_TU).read_text()
    avx2_defs = func_names(avx2_tu)
    for name in sorted(scalar_decls - avx2_defs):
        errors.append(f"{AVX2_TU}: {name} has no AVX2 definition")

    # 5. every kernel (dispatched families included) swept by the
    #    equivalence suite.
    test_text = (root / TEST).read_text()
    for name in sorted(scalar_decls | (top_level_names - NON_KERNEL_NAMES)):
        if name not in test_text:
            errors.append(f"{TEST}: kernel {name} is never exercised")

    # 6. the persistence layer (cold scans over chunk files) goes through the
    #    dispatched entry points only — never a pinned scalar::/avx2:: call.
    ns_call = re.compile(r"\b(scalar|avx2)::")
    for path in sorted((root / "src" / "persist").rglob("*")):
        if path.suffix not in (".h", ".cc"):
            continue
        rel = path.relative_to(root).as_posix()
        for i, line in enumerate(strip_comments(path.read_text()).splitlines()):
            if ns_call.search(line):
                errors.append(
                    f"{rel}:{i + 1}: persist code must use the dispatched "
                    f"kernels:: entry points, not scalar::/avx2:: directly")

    if errors:
        for e in errors:
            print(f"kernel_parity_lint: {e}", file=sys.stderr)
        return 1
    print(f"kernel_parity_lint: OK ({len(scalar_decls)} dispatched kernels, "
          f"{len(top_level_names - scalar_decls)} single-implementation)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
