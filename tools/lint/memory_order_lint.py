#!/usr/bin/env python3
"""Memory-order audit linter.

Raw `std::memory_order_*` tokens are the sharpest tool in the codebase:
every use carries a fence-placement argument that has to be re-verified on
every edit. The repo's policy is to concentrate them in a small set of
audited files (the seqlock latch, the relaxed counter, the lock-free
encoding cache) and express everything else through those abstractions —
RelaxedCounter::FetchAdd/UpdateMax for work cursors and accounting, the
latch/guard API for publication.

This linter fails on any `memory_order` token in src/ outside the audit
list below, pointing the author at the abstraction (or at adding the file
to the list WITH a written justification, which is a review event).
"""

import re
import sys
from pathlib import Path

# path (relative to repo root) -> why raw orderings are justified there.
AUDITED = {
    "src/storage/chunk_latch.h":
        "the seqlock/latch protocol itself (Boehm-style acquire/release "
        "epoch fences); every other file synchronizes through it",
    "src/storage/types.h":
        "RelaxedCounter: the relaxed-atomic accounting abstraction the rest "
        "of the tree is expected to use",
    "src/storage/compressed_cache.h":
        "lock-free hit path of the encoding cache: epoch-validated "
        "acquire/release publication, documented in the class comment",
    "src/exec/mixed_workload_runner.cc":
        "conflict-DAG dependency counters: the acq_rel fetch_sub edge is the "
        "happens-before carrier from predecessor effects to successor "
        "execution, irreducible to RelaxedCounter by design",
    "src/persist/io.cc":
        "g_fail_after torn-write injection counter: a test-only relaxed "
        "countdown read/written inside the write syscall wrapper; it orders "
        "nothing (the injected failure is observed through the same thread's "
        "Status return), and RelaxedCounter has no decrement-and-test",
}

TOKEN_RE = re.compile(r"\bmemory_order(_|::)\w+")


def strip_comments(text: str) -> str:
    text = re.sub(r"/\*.*?\*/", lambda m: "\n" * m.group(0).count("\n"), text,
                  flags=re.S)
    return re.sub(r"//[^\n]*", "", text)


def main() -> int:
    root = Path(sys.argv[1]) if len(sys.argv) > 1 else Path(__file__).resolve().parents[2]
    errors = []
    audited_seen = set()

    for path in sorted((root / "src").rglob("*")):
        if path.suffix not in (".h", ".cc"):
            continue
        rel = path.relative_to(root).as_posix()
        text = strip_comments(path.read_text())
        hits = [(i + 1, line) for i, line in enumerate(text.splitlines())
                if TOKEN_RE.search(line)]
        if not hits:
            continue
        if rel in AUDITED:
            audited_seen.add(rel)
            continue
        for lineno, _ in hits:
            errors.append(
                f"{rel}:{lineno}: raw memory_order outside the audited set — "
                f"use RelaxedCounter / the latch API, or add the file to "
                f"tools/lint/memory_order_lint.py with a justification")

    # An audit entry whose file no longer has raw orderings is stale: prune
    # it so the allowlist never outgrows reality.
    for rel in sorted(set(AUDITED) - audited_seen):
        if not (root / rel).exists():
            errors.append(f"{rel}: audited file does not exist (stale entry)")
        else:
            errors.append(f"{rel}: audited but contains no memory_order token "
                          f"(stale entry — remove it)")

    if errors:
        for e in errors:
            print(f"memory_order_lint: {e}", file=sys.stderr)
        return 1
    print(f"memory_order_lint: OK ({len(audited_seen)} audited files)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
