#!/bin/sh
# Runs every repo-specific linter against the tree. Exits nonzero if any
# fails. CI runs this in the static-analysis job; locally:
#   tools/lint/run_all.sh
set -eu

root="$(cd "$(dirname "$0")/../.." && pwd)"
status=0

python3 "$root/tools/lint/kernel_parity_lint.py" "$root" || status=1
python3 "$root/tools/lint/memory_order_lint.py" "$root" || status=1

exit $status
